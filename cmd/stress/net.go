package main

import (
	"fmt"
	"log"
	"os"
	"os/exec"
	"time"

	"repro/internal/comm"
	"repro/internal/harness"
	"repro/internal/netcomm"
)

// Multi-process mode: with -transport tcp|unix the stress driver becomes
// a launcher.  It runs one pinned scenario twice — once in-process on the
// PerfectTransport with the full oracle diff, then again as one world
// spread across -procs OS processes over sockets — and requires the two
// forests to carry the identical partition-invariant checksum.  The
// worker processes are either spawned copies of this binary (-join puts
// stress into worker mode) or the dedicated cmd/octd binary (-octd).
//
//	stress -transport unix -procs 3 -net-ranks 13 -replay 42
//	stress -transport tcp  -procs 3 -net-ranks 13 -replay 42 -codec v1
//	stress -transport unix -procs 3 -octd ./octd -net-chaos 20000 -replay 42

// netLaunch describes one multi-process comparison run.
type netLaunch struct {
	network  string // "tcp" or "unix"
	procs    int
	listen   string // leader rendezvous address; "" = safe default
	octd     string // worker binary; "" = re-exec this binary in -join mode
	ranks    int    // world size override (0 keeps the scenario's)
	chaosPPM uint   // socket-layer frame-drop rate, parts per million
	seed     int64
	pin      func(harness.Scenario) harness.Scenario
}

// runNetLeader executes the multi-process comparison and returns the
// process exit code.
func runNetLeader(cfg netLaunch) int {
	if cfg.network != "tcp" && cfg.network != "unix" {
		log.Printf("-transport %q: want inproc, tcp or unix", cfg.network)
		return 2
	}
	if cfg.procs < 1 {
		log.Printf("-procs %d: need at least the leader", cfg.procs)
		return 2
	}
	sc := cfg.pin(harness.FromSeed(cfg.seed))
	if cfg.ranks > 0 {
		sc.Ranks = cfg.ranks
		sc = sc.Normalized()
	}
	if cfg.procs > sc.Ranks {
		cfg.procs = sc.Ranks
	}

	// Leg A: the in-process reference run, with the full serial-oracle
	// octant diff.  Its checksum is the value the distributed world must
	// reproduce bit for bit.
	log.Printf("in-process leg: %v", sc)
	ref := harness.Run(sc)
	if ref.Err != nil {
		log.Printf("FAIL (in-process leg): %v", ref.Err)
		return 1
	}
	log.Printf("in-process leg ok: %d -> %d leaves, checksum %#x", ref.LeavesBefore, ref.LeavesAfter, ref.Checksum)

	// Leg B: the same scenario as one world over -procs OS processes.
	spans := splitSpans(sc.Ranks, cfg.procs)
	ln, cleanup, err := netcomm.Listen(cfg.network, cfg.listen)
	if err != nil {
		log.Printf("listen: %v", err)
		return 1
	}
	defer cleanup()
	addr := ln.Addr().String()
	log.Printf("distributed leg: %d ranks over %d processes (%s %s)", sc.Ranks, cfg.procs, cfg.network, addr)

	workers, err := spawnWorkers(cfg, addr, spans[1:])
	if err != nil {
		ln.Close()
		log.Printf("spawn workers: %v", err)
		return 1
	}
	chaos := netcomm.NetChaos{}
	if cfg.chaosPPM > 0 {
		chaos = netcomm.NetChaos{Seed: uint64(sc.Seed) | 1, DropPPM: uint32(cfg.chaosPPM)}
	}
	tr, _, err := netcomm.Lead(ln, netcomm.LeadConfig{
		WorldSize: sc.Ranks, Procs: cfg.procs, Span: spans[0],
		Job: harness.EncodeJob(sc), Chaos: chaos,
	})
	if err != nil {
		log.Printf("rendezvous: %v", err)
		reapWorkers(workers)
		return 1
	}
	w := comm.NewWorldTransport(sc.Ranks, tr)
	w.SetTimeout(2 * time.Minute)
	res := harness.RunLocalRanks(w, spans[0].Lo, spans[0].Hi, sc)
	w.Close()
	if werr := reapWorkers(workers); werr != nil {
		log.Printf("FAIL (distributed leg): %v", werr)
		return 1
	}
	if res.Err != nil {
		log.Printf("FAIL (distributed leg): %v", res.Err)
		return 1
	}
	log.Printf("distributed leg ok: %d leaves, checksum %#x", res.LeavesAfter, res.Checksum)

	if res.Checksum != ref.Checksum || res.LeavesAfter != ref.LeavesAfter {
		log.Printf("FAIL: distributed world diverged from the in-process run: checksum %#x != %#x (leaves %d vs %d)",
			res.Checksum, ref.Checksum, res.LeavesAfter, ref.LeavesAfter)
		return 1
	}
	log.Printf("ok: %d-process world matches the in-process run bit for bit (checksum %#x)", cfg.procs, ref.Checksum)
	return 0
}

// spawnWorkers starts one worker process per remote span, inheriting
// stderr so bootstrap failures surface in the launcher's log.
func spawnWorkers(cfg netLaunch, addr string, spans []netcomm.Span) ([]*exec.Cmd, error) {
	workers := make([]*exec.Cmd, 0, len(spans))
	for _, sp := range spans {
		span := fmt.Sprintf("%d-%d", sp.Lo, sp.Hi)
		var cmd *exec.Cmd
		if cfg.octd != "" {
			cmd = exec.Command(cfg.octd, "-join", addr, "-network", cfg.network, "-span", span, "-v")
		} else {
			self, err := os.Executable()
			if err != nil {
				reapWorkers(workers)
				return nil, err
			}
			cmd = exec.Command(self, "-transport", cfg.network, "-join", addr, "-span", span)
		}
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			reapWorkers(workers)
			return nil, fmt.Errorf("starting worker for span %s: %w", span, err)
		}
		workers = append(workers, cmd)
	}
	return workers, nil
}

// reapWorkers waits for every worker and returns the first failure.
func reapWorkers(workers []*exec.Cmd) error {
	var first error
	for _, cmd := range workers {
		if err := cmd.Wait(); err != nil && first == nil {
			first = fmt.Errorf("worker %d: %w", cmd.Process.Pid, err)
		}
	}
	return first
}

// runNetWorker is the -join mode: this stress process hosts one rank span
// of a leader's world, exactly like cmd/octd.  Returns the exit code.
func runNetWorker(network, join, spanStr string) int {
	span, err := netcomm.ParseSpan(spanStr)
	if err != nil {
		log.Printf("%v", err)
		return 2
	}
	log.SetPrefix(fmt.Sprintf("stress[%s]: ", spanStr))
	tr, wi, err := netcomm.Join(netcomm.JoinConfig{Network: network, Addr: join, Span: span})
	if err != nil {
		log.Printf("join %s: %v", join, err)
		return 1
	}
	sc, err := harness.DecodeJob(wi.Job)
	if err != nil {
		tr.Stop()
		log.Printf("%v", err)
		return 1
	}
	w := comm.NewWorldTransport(wi.Size, tr)
	w.SetTimeout(2 * time.Minute)
	res := harness.RunLocalRanks(w, span.Lo, span.Hi, sc)
	w.Close()
	if res.Err != nil {
		log.Printf("FAIL: %v", res.Err)
		return 1
	}
	log.Printf("ok: checksum %#x", res.Checksum)
	return 0
}

// splitSpans cuts [0, p) into n near-equal contiguous spans.
func splitSpans(p, n int) []netcomm.Span {
	spans := make([]netcomm.Span, 0, n)
	lo := 0
	for i := 0; i < n; i++ {
		hi := lo + (p-lo)/(n-i)
		spans = append(spans, netcomm.Span{Lo: lo, Hi: hi})
		lo = hi
	}
	return spans
}
