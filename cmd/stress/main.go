// Command stress drives the differential-testing harness: it draws random
// scenarios from the full configuration lattice (dimension, balance
// condition, brick shape, periodicity, masks, rank count, partition skew,
// refinement pattern), runs the parallel one-pass balance under the
// simulated communicator, audits every distributed invariant, and diffs the
// result octant-for-octant against the serial RefBalance oracle.
//
// On a failure it shrinks the scenario to a smaller one that still fails
// and prints both the replay command and a ready-to-paste Go test skeleton.
//
// Examples:
//
//	stress -seconds 30            # time-boxed sweep (CI default)
//	stress -scenarios 500         # fixed number of scenarios
//	stress -seed 7 -scenarios 100 # deterministic band of seeds
//	stress -replay 123456         # re-run one failing seed verbatim
//	stress -fault 1 -seconds 5    # widen the preclusion test; must fail
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/forest"
	"repro/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stress: ")
	var (
		seconds   = flag.Int("seconds", 30, "time budget in seconds (0 = use -scenarios only)")
		scenarios = flag.Int("scenarios", 0, "stop after this many scenarios (0 = time budget only)")
		seed      = flag.Int64("seed", 1, "first scenario seed; scenario i uses seed+i")
		replay    = flag.Int64("replay", 0, "replay exactly one scenario with this seed, then exit")
		fault     = flag.Int("fault", 0, "inject a balance bug: widen the preclusion test by this many levels")
		shrinkBud = flag.Int("shrink", 80, "run budget for shrinking a failing scenario")
		verbose   = flag.Bool("v", false, "print every scenario as it runs")
	)
	flag.Parse()

	forest.PreclusionFaultLevels = *fault
	if *fault != 0 {
		log.Printf("fault injection: preclusion widened by %d level(s); expecting failures", *fault)
	}

	if *replay != 0 {
		sc := harness.FromSeed(*replay)
		log.Printf("replaying %v", sc)
		res := harness.Run(sc)
		if res.Err != nil {
			log.Printf("FAIL: %v", res.Err)
			os.Exit(1)
		}
		log.Printf("ok: %d trees, %d -> %d leaves", res.Trees, res.LeavesBefore, res.LeavesAfter)
		return
	}

	if *seconds <= 0 && *scenarios <= 0 {
		log.Fatal("nothing to do: set -seconds and/or -scenarios")
	}
	deadline := time.Time{}
	if *seconds > 0 {
		deadline = time.Now().Add(time.Duration(*seconds) * time.Second)
	}

	var (
		ran, failed int
		leaves      int64
		maxRanks    int
		start       = time.Now()
	)
	for s := *seed; ; s++ {
		if *scenarios > 0 && ran >= *scenarios {
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		sc := harness.FromSeed(s)
		if *verbose {
			log.Printf("seed %d: %v", s, sc)
		}
		res := harness.Run(sc)
		ran++
		leaves += res.LeavesAfter
		if sc.Ranks > maxRanks {
			maxRanks = sc.Ranks
		}
		if res.Err == nil {
			continue
		}
		failed++
		log.Printf("FAIL seed %d: %v", s, res.Err)
		small, smallRes, attempts := harness.Shrink(sc, *shrinkBud)
		log.Printf("shrunk after %d runs to: %v", attempts, small)
		log.Printf("still failing with: %v", smallRes.Err)
		log.Printf("replay with: go run ./cmd/stress -replay %d", small.Seed)
		fmt.Fprintf(os.Stderr, "\n%s\n", harness.ReproSource(small, smallRes.Err))
		if *fault != 0 {
			break // fault mode only needs to prove the bug is catchable
		}
	}

	elapsed := time.Since(start).Round(time.Millisecond)
	log.Printf("%d scenarios in %v (%.1f/s), %d balanced leaves, up to %d ranks, %d failure(s)",
		ran, elapsed, float64(ran)/elapsed.Seconds(), leaves, maxRanks, failed)
	if *fault != 0 {
		// Under fault injection the exit status is inverted: the run
		// succeeds only if the harness caught the planted bug.
		if failed == 0 {
			log.Printf("injected fault was NOT caught — the harness has lost its teeth")
			os.Exit(2)
		}
		log.Printf("injected fault caught, as it should be")
		return
	}
	if failed > 0 {
		os.Exit(1)
	}
}
