// Command stress drives the differential-testing harness: it draws random
// scenarios from the full configuration lattice (dimension, balance
// condition, brick shape, periodicity, masks, rank count, partition skew,
// refinement pattern), runs the parallel one-pass balance under the
// simulated communicator, audits every distributed invariant, and diffs the
// result octant-for-octant against the serial RefBalance oracle.
//
// With -chaos it becomes a chaos sweep: each passing scenario is re-run on
// a seeded fault-injecting transport (message drops, duplication,
// delay/reordering, per-rank stalls) and must produce the identical
// balanced forest — same checksum as the perfect-transport run, same
// octants as the oracle.  With -chaos-canary the reliable-delivery layer
// is switched off under the same faults, and the sweep must FAIL: a
// passing canary means lost messages went unnoticed.
//
// On a failure it shrinks the scenario to a smaller one that still fails
// and prints both the replay command and a ready-to-paste Go test skeleton.
//
// Examples:
//
//	stress -seconds 30             # time-boxed sweep (CI default)
//	stress -scenarios 500          # fixed number of scenarios
//	stress -seed 7 -scenarios 100  # deterministic band of seeds
//	stress -replay 123456          # re-run one failing seed verbatim
//	stress -seconds 30 -chaos 1    # chaos sweep: perfect vs chaos vs oracle
//	stress -replay 42 -chaos 1     # replay one seed under the same chaos
//	stress -chaos-canary -scenarios 3  # lost-message canary; must fail
//	stress -fault 1 -seconds 5     # widen the preclusion test; must fail
//	stress -seconds 30 -crash 1    # crash sweep: kill+recover vs fault-free
//	stress -crash-canary -scenarios 3  # unrecoverable-kill canary; must fail
//	stress -replay 42 -crash-rank 1 -crash-phase query  # replay one kill point
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/comm"
	"repro/internal/forest"
	"repro/internal/harness"
	"repro/internal/otest"
)

// chaosSeedFor derives the per-scenario chaos seed from the sweep's chaos
// base, so one printed pair (-seed, -chaos) replays the whole sweep.
func chaosSeedFor(chaosBase uint64, seed int64) uint64 {
	return otest.SplitMix64(chaosBase^uint64(seed)) | 1 // non-zero
}

// crashSeedFor is chaosSeedFor for the crash sweep, salted differently so
// running both sweeps off the same base does not correlate the kill point
// with the chaos fates.
func crashSeedFor(crashBase uint64, seed int64) uint64 {
	return otest.SplitMix64(crashBase^uint64(seed)^0x6372617368) | 1 // non-zero
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stress: ")
	var (
		seconds   = flag.Int("seconds", 30, "time budget in seconds (0 = use -scenarios only)")
		scenarios = flag.Int("scenarios", 0, "stop after this many scenarios (0 = time budget only)")
		seed      = flag.Int64("seed", 1, "first scenario seed; scenario i uses seed+i")
		replay    = flag.Int64("replay", 0, "replay exactly one scenario with this seed, then exit")
		fault     = flag.Int("fault", 0, "inject a balance bug: widen the preclusion test by this many levels")
		chaos     = flag.Uint64("chaos", 0, "chaos sweep: re-run every scenario under seeded transport faults derived from this base seed")
		canary    = flag.Bool("chaos-canary", false, "run scenarios under chaos with reliable delivery DISABLED; the sweep must fail")
		crash     = flag.Uint64("crash", 0, "crash sweep: re-run every scenario with a seeded rank-kill plus checkpoint recovery derived from this base seed")
		crashCan  = flag.Bool("crash-canary", false, "run scenarios with a seeded rank-kill and checkpointing DISABLED; the sweep must fail")
		crashRank = flag.Int("crash-rank", 0, "with -crash-phase: rank to kill (replay pinning)")
		crashPh   = flag.String("crash-phase", "", "pin the kill to this pipeline phase instead of deriving it from -crash")
		crashOps  = flag.Int("crash-ops", 0, "with -crash-phase: comm operations completed in the phase before the kill")
		reportDir = flag.String("report-dir", "", "write the structured FailureReport of each failing scenario as JSON into this directory")
		shrinkBud = flag.Int("shrink", 80, "run budget for shrinking a failing scenario")
		workersF  = flag.Int("workers", -1, "pin the rank-local worker pool size for every scenario (-1 = scenario-chosen)")
		codecF    = flag.String("codec", "", "pin the wire codec for every scenario: v0 or v1 (default scenario-chosen)")
		keyNatF   = flag.String("key-native", "", "pin the chunk representation for every scenario: on = resident packed keys (default pipeline), off = struct-resident oracle (default scenario-chosen)")
		verbose   = flag.Bool("v", false, "print every scenario as it runs")

		// Multi-process mode (net.go): run one pinned scenario as a world
		// spanning several OS processes over sockets and compare its
		// checksum against the in-process run.
		transport = flag.String("transport", "inproc", "world transport: inproc, tcp or unix (tcp/unix = multi-process mode)")
		procsF    = flag.Int("procs", 3, "with -transport tcp|unix: OS process count, including this leader")
		listenF   = flag.String("listen", "", "with -transport tcp|unix: leader rendezvous address (default loopback port 0 / temp-dir socket)")
		joinF     = flag.String("join", "", "worker mode: join the leader rendezvous at this address instead of leading")
		spanF     = flag.String("span", "", "worker mode: rank span to host, as lo-hi")
		octdF     = flag.String("octd", "", "with -transport tcp|unix: worker binary to spawn (default: this binary in -join mode)")
		netRanks  = flag.Int("net-ranks", 13, "with -transport tcp|unix: pin the scenario's world size (0 = scenario-chosen)")
		netChaos  = flag.Uint("net-chaos", 0, "with -transport tcp|unix: socket-layer frame-drop rate in parts per million")
	)
	flag.Parse()

	if *joinF != "" {
		os.Exit(runNetWorker(*transport, *joinF, *spanF))
	}

	// pin applies the -workers override; replay commands printed below
	// carry the same flag so a pinned failure stays reproducible.
	pinCodec := forest.WireV0
	if *codecF != "" {
		var err error
		pinCodec, err = forest.ParseWireCodec(*codecF)
		if err != nil {
			log.Fatal(err)
		}
	}
	switch *keyNatF {
	case "", "on", "off":
	default:
		log.Fatalf("bad -key-native %q: want on or off", *keyNatF)
	}
	pin := func(sc harness.Scenario) harness.Scenario {
		if *workersF >= 0 {
			sc.Workers = *workersF
		}
		if *codecF != "" {
			sc.Codec = pinCodec
		}
		if *keyNatF != "" {
			sc.KeyNative = *keyNatF == "on"
		}
		return sc.Normalized()
	}
	pinFlag := ""
	if *workersF >= 0 {
		pinFlag = fmt.Sprintf(" -workers %d", *workersF)
	}
	if *codecF != "" {
		pinFlag += fmt.Sprintf(" -codec %v", pinCodec)
	}
	if *keyNatF != "" {
		pinFlag += " -key-native " + *keyNatF
	}

	if *transport != "inproc" {
		netSeed := *seed
		if *replay != 0 {
			netSeed = *replay
		}
		os.Exit(runNetLeader(netLaunch{
			network: *transport, procs: *procsF, listen: *listenF, octd: *octdF,
			ranks: *netRanks, chaosPPM: *netChaos, seed: netSeed, pin: pin,
		}))
	}

	forest.PreclusionFaultLevels = *fault
	if *fault != 0 {
		log.Printf("fault injection: preclusion widened by %d level(s); expecting failures", *fault)
	}

	if *replay != 0 {
		sc := pin(harness.FromSeed(*replay))
		if *chaos != 0 {
			sc = sc.WithChaos(chaosSeedFor(*chaos, *replay))
		}
		sc.ChaosCanary = *canary
		if *crash != 0 {
			sc = sc.WithCrash(crashSeedFor(*crash, *replay))
		}
		if *crashPh != "" {
			sc.CrashRank, sc.CrashPhase, sc.CrashOps = *crashRank, *crashPh, *crashOps
		}
		if sc.Crashing() {
			sc.CrashCanary = *crashCan
		}
		log.Printf("replaying %v", sc)
		res := harness.Run(sc)
		if res.Err != nil {
			log.Printf("FAIL: %v", res.Err)
			writeFailureReport(*reportDir, sc, res)
			os.Exit(1)
		}
		log.Printf("ok: %d trees, %d -> %d leaves, checksum %#x", res.Trees, res.LeavesBefore, res.LeavesAfter, res.Checksum)
		return
	}

	if *canary {
		runCanary(*seed, *scenarios, *chaos)
		return
	}
	if *crashCan {
		runCrashCanary(*seed, *scenarios, *crash)
		return
	}

	if *seconds <= 0 && *scenarios <= 0 {
		log.Fatal("nothing to do: set -seconds and/or -scenarios")
	}
	deadline := time.Time{}
	if *seconds > 0 {
		deadline = time.Now().Add(time.Duration(*seconds) * time.Second)
	}

	var (
		ran, failed int
		leaves      int64
		maxRanks    int
		start       = time.Now()
	)
	for s := *seed; ; s++ {
		if *scenarios > 0 && ran >= *scenarios {
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		sc := pin(harness.FromSeed(s))
		if *verbose {
			log.Printf("seed %d: %v", s, sc)
		}
		res := harness.Run(sc)
		ran++
		leaves += res.LeavesAfter
		if sc.Ranks > maxRanks {
			maxRanks = sc.Ranks
		}
		if res.Err == nil && *chaos != 0 {
			// Chaos leg: same scenario, faulty transport.  The forest
			// must be identical — the oracle diff inside Run catches
			// octant-level drift, and the checksum cross-check catches
			// any divergence from the perfect-transport leg directly.
			csc := sc.WithChaos(chaosSeedFor(*chaos, s))
			cres := harness.Run(csc)
			if cres.Err == nil && cres.Checksum != res.Checksum {
				cres.Err = fmt.Errorf("chaos run diverged from perfect transport: checksum %#x != %#x",
					cres.Checksum, res.Checksum)
			}
			if cres.Err != nil {
				failed++
				log.Printf("FAIL seed %d (chaos %d): %v", s, csc.ChaosSeed, cres.Err)
				writeFailureReport(*reportDir, csc, cres)
				small, smallRes, attempts := harness.Shrink(csc, *shrinkBud)
				log.Printf("shrunk after %d runs to: %v", attempts, small)
				log.Printf("still failing with: %v", smallRes.Err)
				log.Printf("replay with: go run ./cmd/stress -replay %d -chaos %d%s", small.Seed, *chaos, pinFlag)
				fmt.Fprintf(os.Stderr, "\n%s\n", harness.ReproSource(small, smallRes.Err))
				continue
			}
		}
		if res.Err == nil && *crash != 0 {
			// Crash leg: same scenario, one seeded rank-kill, checkpoint
			// recovery.  The recovered forest must be bit-identical — the
			// oracle diff inside Run catches octant-level drift, and the
			// checksum cross-check catches divergence from the fault-free
			// leg directly.
			ksc := sc.WithCrash(crashSeedFor(*crash, s))
			kres := harness.Run(ksc)
			if kres.Err == nil && kres.Checksum != res.Checksum {
				kres.Err = fmt.Errorf("crash-recovery run diverged from the fault-free run: checksum %#x != %#x",
					kres.Checksum, res.Checksum)
			}
			if kres.Err != nil {
				failed++
				log.Printf("FAIL seed %d (crash %d): %v", s, ksc.CrashSeed, kres.Err)
				writeFailureReport(*reportDir, ksc, kres)
				small, smallRes, attempts := harness.Shrink(ksc, *shrinkBud)
				log.Printf("shrunk after %d runs to: %v", attempts, small)
				log.Printf("still failing with: %v", smallRes.Err)
				log.Printf("replay with: go run ./cmd/stress -replay %d%s%s", small.Seed, crashPinFlags(small), pinFlag)
				fmt.Fprintf(os.Stderr, "\n%s\n", harness.ReproSource(small, smallRes.Err))
				continue
			}
		}
		if res.Err == nil {
			continue
		}
		failed++
		log.Printf("FAIL seed %d: %v", s, res.Err)
		writeFailureReport(*reportDir, sc, res)
		small, smallRes, attempts := harness.Shrink(sc, *shrinkBud)
		log.Printf("shrunk after %d runs to: %v", attempts, small)
		log.Printf("still failing with: %v", smallRes.Err)
		log.Printf("replay with: go run ./cmd/stress -replay %d%s", small.Seed, pinFlag)
		fmt.Fprintf(os.Stderr, "\n%s\n", harness.ReproSource(small, smallRes.Err))
		if *fault != 0 {
			break // fault mode only needs to prove the bug is catchable
		}
	}

	elapsed := time.Since(start).Round(time.Millisecond)
	mode := ""
	if *chaos != 0 {
		mode = fmt.Sprintf(" (chaos base %d, each scenario run twice)", *chaos)
	}
	if *crash != 0 {
		mode += fmt.Sprintf(" (crash base %d, each scenario re-run with a kill)", *crash)
	}
	log.Printf("%d scenarios in %v (%.1f/s), %d balanced leaves, up to %d ranks, %d failure(s)%s",
		ran, elapsed, float64(ran)/elapsed.Seconds(), leaves, maxRanks, failed, mode)
	if *fault != 0 {
		// Under fault injection the exit status is inverted: the run
		// succeeds only if the harness caught the planted bug.
		if failed == 0 {
			log.Printf("injected fault was NOT caught — the harness has lost its teeth")
			os.Exit(2)
		}
		log.Printf("injected fault caught, as it should be")
		return
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runCanary executes the lost-message canary: scenarios run under chaos
// with the reliable-delivery protocol disabled, so injected drops become
// real message loss.  The exit status is inverted — the canary passes only
// if at least one scenario fails (deadlock caught by the watchdog, or an
// oracle mismatch).  Single-rank scenarios are skipped: they exchange no
// messages, so nothing can be lost.
func runCanary(seed int64, scenarios int, chaosBase uint64) {
	if scenarios <= 0 {
		scenarios = 3
	}
	if chaosBase == 0 {
		chaosBase = 1
	}
	var ran, failed int
	log.Printf("canary: %d multi-rank scenarios under chaos with reliable delivery DISABLED; failures are the goal", scenarios)
	for s := seed; ran < scenarios; s++ {
		sc := harness.FromSeed(s)
		if sc.Ranks < 2 {
			continue
		}
		sc = sc.WithChaos(chaosSeedFor(chaosBase, s))
		sc.ChaosCanary = true
		res := harness.Run(sc)
		ran++
		if res.Err != nil {
			failed++
			log.Printf("seed %d: lost message caught, as it should be: %.200s", s, res.Err.Error())
		} else {
			log.Printf("seed %d: survived without reliable delivery (%v)", s, sc)
		}
	}
	if failed == 0 {
		log.Printf("NO scenario failed without reliable delivery — the chaos canary is dead")
		os.Exit(2)
	}
	log.Printf("canary ok: %d/%d scenarios failed without reliable delivery", failed, ran)
}

// runCrashCanary executes the unrecoverable-kill canary: scenarios run
// with a seeded rank-kill and NO checkpoint store, so the kill cannot be
// recovered.  The exit status is inverted — the canary passes only if
// every scenario fails with the typed rank-death error; a surviving
// scenario means the crash injector silently stopped firing.
func runCrashCanary(seed int64, scenarios int, crashBase uint64) {
	if scenarios <= 0 {
		scenarios = 3
	}
	if crashBase == 0 {
		crashBase = 1
	}
	var ran, failed int
	log.Printf("crash canary: %d scenarios with a seeded rank-kill and checkpointing DISABLED; failures are the goal", scenarios)
	for s := seed; ran < scenarios; s++ {
		sc := harness.FromSeed(s)
		sc = sc.WithCrash(crashSeedFor(crashBase, s))
		sc.CrashCanary = true
		res := harness.Run(sc)
		ran++
		if res.Err != nil {
			failed++
			log.Printf("seed %d: kill was fatal without checkpoints, as it should be: %.200s", s, res.Err.Error())
		} else {
			log.Printf("seed %d: survived an unrecoverable kill (%v)", s, sc)
		}
	}
	if failed < ran {
		log.Printf("%d/%d scenarios survived an unrecoverable kill — the crash canary is dead", ran-failed, ran)
		os.Exit(2)
	}
	log.Printf("crash canary ok: %d/%d kills were fatal without checkpoints", failed, ran)
}

// crashPinFlags renders the explicit kill point of a crash scenario as
// replay flags, so the replayed kill lands on the same rank, phase and op
// count even if the shrunken scenario's rank count changed the seeded
// derivation.
func crashPinFlags(sc harness.Scenario) string {
	if !sc.Crashing() {
		return ""
	}
	r, ph, ops := sc.CrashPlan()
	return fmt.Sprintf(" -crash-rank %d -crash-phase %s -crash-ops %d", r, ph, ops)
}

// writeFailureReport persists one failing scenario's diagnostics as a JSON
// artifact: the scenario, the error, and — when the world captured one —
// the structured FailureReport (per-rank phase/op/blocked state, dead
// marks, mailbox contents, unacked channels) plus its human-readable
// rendering.  CI uploads the directory on failure.
func writeFailureReport(dir string, sc harness.Scenario, res harness.Result) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Printf("report-dir: %v", err)
		return
	}
	artifact := struct {
		Seed     int64               `json:"seed"`
		Scenario string              `json:"scenario"`
		Error    string              `json:"error"`
		Kills    int64               `json:"kills,omitempty"`
		Respawns int64               `json:"respawns,omitempty"`
		Replays  int                 `json:"replays,omitempty"`
		Report   *comm.FailureReport `json:"report,omitempty"`
		Rendered string              `json:"rendered,omitempty"`
	}{Seed: sc.Seed, Scenario: sc.String(), Kills: res.Kills, Respawns: res.Respawns, Replays: res.Replays, Report: res.Failure}
	if res.Err != nil {
		artifact.Error = res.Err.Error()
	}
	if res.Failure != nil {
		artifact.Rendered = res.Failure.String()
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		log.Printf("report-dir: %v", err)
		return
	}
	name := fmt.Sprintf("failure-seed%d.json", sc.Seed)
	if sc.Seed < 0 {
		name = fmt.Sprintf("failure-seedneg%d.json", -sc.Seed)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Printf("report-dir: %v", err)
		return
	}
	log.Printf("failure report written to %s", path)
}
