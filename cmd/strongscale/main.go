// Command strongscale regenerates Figure 17: the strong-scaling study of
// the one-pass 2:1 balance on the synthetic ice-sheet mesh (the stand-in
// for the paper's Antarctica mesh, see Figure 16 and DESIGN.md).  The mesh
// is fixed and the rank count swept; absolute per-phase seconds are printed
// for the old and new algorithms, plus the ideal-scaling reference column.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/stats"

	octbalance "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("strongscale: ")
	var (
		ranksF  = flag.String("ranks", "1,2,4,8,16,32", "comma-separated rank counts")
		grid    = flag.Int("grid", 10, "tree grid extent of the ice sheet domain")
		level   = flag.Int("level", 7, "grounding line refinement level")
		dim     = flag.Int("dim", 2, "dimension: 2, or 3 for a thin-sheet domain")
		notify  = flag.String("notify", "notify", "pattern reversal: naive, ranges, notify")
		jsonOut = flag.String("json", "", "also write the sweep as a JSON array of bench records")
	)
	flag.Parse()

	scheme := octbalance.SchemeNotify
	switch *notify {
	case "naive":
		scheme = octbalance.SchemeNaive
	case "ranges":
		scheme = octbalance.SchemeRanges
	}

	var ranks []int
	for _, s := range strings.Split(*ranksF, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			log.Fatalf("bad rank count %q", s)
		}
		ranks = append(ranks, p)
	}

	is := octbalance.NewIceSheet(*dim, *grid, *level)
	fmt.Printf("strong scaling, ice sheet mesh on %v (Figures 16/17)\n\n", is.Conn)

	phases := []string{"total", "local balance", "query/response", "rebalance", "notify"}
	tables := make([]*stats.Table, len(phases))
	for i, ph := range phases {
		tables[i] = stats.NewTable(fmt.Sprintf("(%c) %s [seconds]", 'a'+i, ph),
			"ranks", "perfect", "old", "new", "speedup")
	}
	var base [2][]float64 // per phase, old/new at the smallest rank count

	// aggKey maps the table's phase labels onto the PhaseAgg keys.
	aggKey := map[string]string{
		"total": octbalance.PhaseTotal, "local balance": "local-balance",
		"query/response": "query-response", "rebalance": "rebalance", "notify": "notify",
	}

	var records []*obs.BenchRecord
	var meshBefore, meshAfter int64
	for i, p := range ranks {
		run := func(algo octbalance.Algo) octbalance.Result {
			return octbalance.Experiment{
				Conn:      is.Conn,
				Ranks:     p,
				BaseLevel: 1,
				MaxLevel:  is.MaxLevel(),
				Refine:    is.Refine,
				Options:   octbalance.BalanceOptions{Algo: algo, Notify: scheme},
			}.Run()
		}
		oldRes := run(octbalance.AlgoOld)
		newRes := run(octbalance.AlgoNew)
		if oldRes.OctantsAfter != newRes.OctantsAfter {
			log.Fatalf("P=%d: algorithms disagree", p)
		}
		meshBefore, meshAfter = newRes.OctantsBefore, newRes.OctantsAfter
		sel := func(r octbalance.Result, phase string) float64 {
			return r.PhaseAgg[aggKey[phase]].Max
		}
		for j, ph := range phases {
			o, n := sel(oldRes, ph), sel(newRes, ph)
			if i == 0 {
				base[0] = append(base[0], o)
				base[1] = append(base[1], n)
			}
			perfect := base[1][j] * float64(ranks[0]) / float64(p)
			ratio := "-"
			if n > 0 {
				ratio = fmt.Sprintf("%.2fx", o/n)
			}
			tables[j].AddRow(p, perfect, o, n, ratio)
		}
		records = append(records, &obs.BenchRecord{
			Schema: obs.BenchSchema, Workload: "icesheet", Dim: is.Conn.Dim(),
			Ranks: p, K: is.Conn.Dim(), Notify: scheme.String(),
			BaseLevel: 1, MaxLevel: is.MaxLevel(), Env: obs.CurrentEnv(),
			Runs: []obs.BenchRun{oldRes.BenchRun(), newRes.BenchRun()},
		})
	}
	fmt.Printf("mesh: %d octants refined, %d after balance (the paper's 55M -> 85M growth analogue: %.2fx)\n\n",
		meshBefore, meshAfter, float64(meshAfter)/float64(meshBefore))
	for _, tbl := range tables {
		fmt.Println(tbl)
	}
	if *jsonOut != "" {
		writeRecords(*jsonOut, records)
	}
}

// writeRecords validates and writes the sweep as an indented JSON array.
func writeRecords(path string, records []*obs.BenchRecord) {
	for _, r := range records {
		if err := r.Validate(); err != nil {
			log.Fatalf("invalid record (P=%d): %v", r.Ranks, err)
		}
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("records: %s\n", path)
}
