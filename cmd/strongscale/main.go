// Command strongscale regenerates Figure 17: the strong-scaling study of
// the one-pass 2:1 balance on the synthetic ice-sheet mesh (the stand-in
// for the paper's Antarctica mesh, see Figure 16 and DESIGN.md).  The mesh
// is fixed and the rank count swept; absolute per-phase seconds are printed
// for the old and new algorithms, plus the ideal-scaling reference column.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/stats"

	octbalance "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("strongscale: ")
	var (
		ranksF = flag.String("ranks", "1,2,4,8,16,32", "comma-separated rank counts")
		grid   = flag.Int("grid", 10, "tree grid extent of the ice sheet domain")
		level  = flag.Int("level", 7, "grounding line refinement level")
		dim    = flag.Int("dim", 2, "dimension: 2, or 3 for a thin-sheet domain")
		notify = flag.String("notify", "notify", "pattern reversal: naive, ranges, notify")
	)
	flag.Parse()

	scheme := octbalance.SchemeNotify
	switch *notify {
	case "naive":
		scheme = octbalance.SchemeNaive
	case "ranges":
		scheme = octbalance.SchemeRanges
	}

	var ranks []int
	for _, s := range strings.Split(*ranksF, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			log.Fatalf("bad rank count %q", s)
		}
		ranks = append(ranks, p)
	}

	is := octbalance.NewIceSheet(*dim, *grid, *level)
	fmt.Printf("strong scaling, ice sheet mesh on %v (Figures 16/17)\n\n", is.Conn)

	phases := []string{"total", "local balance", "query/response", "rebalance", "notify"}
	tables := make([]*stats.Table, len(phases))
	for i, ph := range phases {
		tables[i] = stats.NewTable(fmt.Sprintf("(%c) %s [seconds]", 'a'+i, ph),
			"ranks", "perfect", "old", "new", "speedup")
	}
	var base [2][]float64 // per phase, old/new at the smallest rank count

	var meshBefore, meshAfter int64
	for i, p := range ranks {
		run := func(algo octbalance.Algo) octbalance.Result {
			return octbalance.Experiment{
				Conn:      is.Conn,
				Ranks:     p,
				BaseLevel: 1,
				MaxLevel:  is.MaxLevel(),
				Refine:    is.Refine,
				Options:   octbalance.BalanceOptions{Algo: algo, Notify: scheme},
			}.Run()
		}
		oldRes := run(octbalance.AlgoOld)
		newRes := run(octbalance.AlgoNew)
		if oldRes.OctantsAfter != newRes.OctantsAfter {
			log.Fatalf("P=%d: algorithms disagree", p)
		}
		meshBefore, meshAfter = newRes.OctantsBefore, newRes.OctantsAfter
		sel := func(r octbalance.Result, phase string) float64 {
			d := r.MaxPhases.Total()
			switch phase {
			case "local balance":
				d = r.MaxPhases.LocalBalance
			case "query/response":
				d = r.MaxPhases.QueryResponse
			case "rebalance":
				d = r.MaxPhases.Rebalance
			case "notify":
				d = r.MaxPhases.Notify
			}
			return d.Seconds()
		}
		for j, ph := range phases {
			o, n := sel(oldRes, ph), sel(newRes, ph)
			if i == 0 {
				base[0] = append(base[0], o)
				base[1] = append(base[1], n)
			}
			perfect := base[1][j] * float64(ranks[0]) / float64(p)
			ratio := "-"
			if n > 0 {
				ratio = fmt.Sprintf("%.2fx", o/n)
			}
			tables[j].AddRow(p, perfect, o, n, ratio)
		}
	}
	fmt.Printf("mesh: %d octants refined, %d after balance (the paper's 55M -> 85M growth analogue: %.2fx)\n\n",
		meshBefore, meshAfter, float64(meshAfter)/float64(meshBefore))
	for _, tbl := range tables {
		fmt.Println(tbl)
	}
}
