// Command octd is the worker-process binary of a multi-process world: it
// joins a leader's rendezvous (cmd/stress or cmd/bench with
// -transport=tcp|unix), receives the rank→address map and the scenario
// job blob, hosts its rank span of the shared comm.World over the socket
// transport, and runs the identical harness pipeline the leader runs on
// its own span.  All collectives — refinement sync, partition, balance,
// audit, checksum — cross process boundaries through internal/netcomm
// without any forest-layer changes.
//
// octd is normally spawned by the launcher, but can be started by hand:
//
//	octd -join 127.0.0.1:40001 -network tcp -span 5-9
//	octd -join /tmp/rdv.sock -network unix -span 5-9 -v
//
// The span must partition [0, P) together with the leader's and the other
// workers' spans; the rendezvous rejects anything else with a typed
// error.  Exit status 0 means this process's share of the run (including
// the collective audit) succeeded.
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"repro/internal/comm"
	"repro/internal/harness"
	"repro/internal/netcomm"
)

func main() {
	log.SetFlags(0)
	var (
		join    = flag.String("join", "", "leader rendezvous address (required)")
		network = flag.String("network", "tcp", "socket family: tcp or unix")
		spanF   = flag.String("span", "", "rank span to host, as lo-hi (required)")
		listen  = flag.String("listen", "", "mesh listen address (default: loopback port 0 / fresh temp-dir socket)")
		worldID = flag.String("world", "", "expected world ID (default: accept the leader's)")
		timeout = flag.Duration("timeout", 2*time.Minute, "world watchdog timeout")
		verbose = flag.Bool("v", false, "log bootstrap and result details")
	)
	flag.Parse()
	if *join == "" || *spanF == "" {
		flag.Usage()
		os.Exit(2)
	}
	span, err := netcomm.ParseSpan(*spanF)
	if err != nil {
		log.Fatalf("octd: %v", err)
	}
	log.SetPrefix("octd[" + *spanF + "]: ")

	tr, wi, err := netcomm.Join(netcomm.JoinConfig{
		Network: *network, Addr: *join, ListenAddr: *listen,
		Span: span, WorldID: *worldID,
	})
	if err != nil {
		log.Fatalf("join %s: %v", *join, err)
	}
	sc, err := harness.DecodeJob(wi.Job)
	if err != nil {
		tr.Stop()
		log.Fatalf("%v", err)
	}
	if *verbose {
		log.Printf("joined world %s as proc %d/%d, hosting ranks %v of %d: %v",
			wi.WorldID, wi.ProcID, len(wi.Procs), span, wi.Size, sc)
	}

	w := comm.NewWorldTransport(wi.Size, tr)
	w.SetTimeout(*timeout)
	res := harness.RunLocalRanks(w, span.Lo, span.Hi, sc)
	w.Close()
	if res.Err != nil {
		log.Fatalf("FAIL: %v", res.Err)
	}
	if *verbose {
		log.Printf("ok: %d leaves, checksum %#x (stats %+v)", res.LeavesAfter, res.Checksum, tr.Stats())
	}
	// The checksum line is the worker's machine-readable result; the
	// launcher cross-checks it against the leader's collective value.
	log.Printf("checksum %#x", res.Checksum)
}
