package octbalance

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md section 3 for the experiment index, and
// EXPERIMENTS.md for measured-vs-paper results).  The cmd/ drivers produce
// the full sweep tables; these benchmarks expose the same code paths to
// `go test -bench`.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/balance"
	"repro/internal/comm"
	"repro/internal/linear"
	"repro/internal/notify"
	"repro/internal/octant"
	"repro/internal/otest"
)

// benchWorkload builds a graded input octree for the serial benchmarks.
func benchWorkload(dim int) []Octant {
	rng := rand.New(rand.NewSource(42))
	return otest.RandomGraded(rng, octant.Root(dim), 9)
}

// BenchmarkFig6SubtreeOld measures the old subtree balance algorithm
// (Figure 6) on a graded mesh, the baseline of the Local balance phase.
func BenchmarkFig6SubtreeOld(b *testing.B) {
	for _, dim := range []int{2, 3} {
		in := benchWorkload(dim)
		root := octant.Root(dim)
		b.Run(fmt.Sprintf("dim%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				balance.SubtreeOld(root, in, dim)
			}
		})
	}
}

// BenchmarkFig7SubtreeNew measures the new subtree balance algorithm
// (Figure 7) on the same inputs; the speedup over Fig6 reproduces the
// Local balance improvement of Figure 15b.
func BenchmarkFig7SubtreeNew(b *testing.B) {
	for _, dim := range []int{2, 3} {
		in := benchWorkload(dim)
		root := octant.Root(dim)
		b.Run(fmt.Sprintf("dim%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				balance.SubtreeNew(root, in, dim)
			}
		})
	}
}

// BenchmarkFig8Reduce measures the preclusion compression of Figure 8.
func BenchmarkFig8Reduce(b *testing.B) {
	for _, dim := range []int{2, 3} {
		in := benchWorkload(dim)
		b.Run(fmt.Sprintf("dim%d/n%d", dim, len(in)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				linear.Reduce(in)
			}
		})
	}
}

// BenchmarkCompleteRoundTrip measures Reduce followed by Complete (the
// compression/recovery pair of Section III-B).
func BenchmarkCompleteRoundTrip(b *testing.B) {
	for _, dim := range []int{2, 3} {
		in := benchWorkload(dim)
		root := octant.Root(dim)
		r := linear.Reduce(in)
		b.Run(fmt.Sprintf("dim%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				linear.Complete(root, r)
			}
		})
	}
}

// BenchmarkTableIILambda measures the O(1) remote-balance decision: the λ
// formulas of Table II plus the closest-balanced-ancestor computation.
func BenchmarkTableIILambda(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	type pair struct{ o, r Octant }
	for _, dim := range []int{2, 3} {
		var pairs []pair
		for len(pairs) < 512 {
			o := otest.RandomOctant(rng, dim, 4, 9)
			r := otest.RandomOctant(rng, dim, 1, 3)
			if !r.Overlaps(o) {
				pairs = append(pairs, pair{o, r})
			}
		}
		for _, k := range []int{1, dim} {
			b.Run(fmt.Sprintf("dim%d/k%d", dim, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p := pairs[i%len(pairs)]
					balance.ClosestBalancedAncestor(p.r, p.o, k)
				}
			})
		}
	}
}

// BenchmarkFig9Seeds measures seed construction (Section IV) and, for
// contrast, BenchmarkFig4AuxiliaryRipple measures the old distance-
// dependent reconstruction it replaces.
func BenchmarkFig9Seeds(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	for _, dim := range []int{2, 3} {
		var os, rs []Octant
		for len(os) < 512 {
			o := otest.RandomOctant(rng, dim, 5, 9)
			r := otest.RandomOctant(rng, dim, 1, 3)
			if !r.Overlaps(o) {
				os = append(os, o)
				rs = append(rs, r)
			}
		}
		b.Run(fmt.Sprintf("dim%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				balance.Seeds(os[i%len(os)], rs[i%len(rs)], dim)
			}
		})
	}
}

// BenchmarkFig4AuxiliaryRipple reconstructs Tk(o) ∩ r through the old
// auxiliary-octant ripple at increasing o-to-r distance, demonstrating the
// distance-dependent cost that motivates Section IV.  Compare with
// BenchmarkFig9SeedReconstruction, whose cost is distance-independent.
func BenchmarkFig4AuxiliaryRipple(b *testing.B) {
	dim, k := 2, 2
	r := octant.Root(dim).Child(0)
	for _, dist := range []int32{1, 4, 16, 64} {
		h := octant.Len(9)
		o := octant.NewUnchecked(dim, 9, octant.Len(1)+dist*h, 0, 0)
		b.Run(fmt.Sprintf("dist%d", dist), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				balance.SubtreeOldExtended(r, nil, []Octant{o}, k)
			}
		})
	}
}

// BenchmarkFig9SeedReconstruction is the new-path counterpart of
// BenchmarkFig4AuxiliaryRipple.
func BenchmarkFig9SeedReconstruction(b *testing.B) {
	dim, k := 2, 2
	r := octant.Root(dim).Child(0)
	for _, dist := range []int32{1, 4, 16, 64} {
		h := octant.Len(9)
		o := octant.NewUnchecked(dim, 9, octant.Len(1)+dist*h, 0, 0)
		b.Run(fmt.Sprintf("dist%d", dist), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				balance.TkOverlap(o, r, k)
			}
		})
	}
}

// notifyBenchPattern is the SFC-local communication pattern used by the
// Section V benchmarks.
func notifyBenchPattern(p int) [][]int {
	rng := rand.New(rand.NewSource(3))
	receivers := make([][]int, p)
	for src := 0; src < p; src++ {
		for d := -2; d <= 2; d++ {
			dst := src + d
			if dst != src && dst >= 0 && dst < p {
				receivers[src] = append(receivers[src], dst)
			}
		}
		if rng.Float64() < 0.3 {
			dst := rng.Intn(p)
			if dst != src {
				receivers[src] = append(receivers[src], dst)
			}
		}
	}
	return receivers
}

// BenchmarkFig12NotifyNaive, BenchmarkNotifyRanges and BenchmarkFig13Notify
// measure the three pattern-reversal schemes (Figures 12 and 13, Section V
// and the Notify panel of Figures 15e/17e).  Bytes/op reflects total
// communication volume.
func benchNotify(b *testing.B, scheme func(*comm.Comm, []int) []int) {
	for _, p := range []int{12, 48} {
		receivers := notifyBenchPattern(p)
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				w := comm.NewWorld(p)
				w.Run(func(c *comm.Comm) {
					scheme(c, receivers[c.Rank()])
				})
				bytes += w.TotalStats().Bytes
			}
			b.ReportMetric(float64(bytes)/float64(b.N), "commbytes/op")
		})
	}
}

func BenchmarkFig12NotifyNaive(b *testing.B) {
	benchNotify(b, notify.Naive)
}

func BenchmarkNotifyRanges(b *testing.B) {
	benchNotify(b, func(c *comm.Comm, r []int) []int { return notify.Ranges(c, r, 8) })
}

func BenchmarkFig13Notify(b *testing.B) {
	benchNotify(b, notify.Notify)
}

// benchBalance runs a full one-pass balance experiment per iteration and
// reports communication volume alongside time.
func benchBalance(b *testing.B, e Experiment) {
	b.Helper()
	var bytes int64
	var after int64
	var maxDepth int64
	for i := 0; i < b.N; i++ {
		res := e.Run()
		for _, st := range res.Comm {
			bytes += st.Bytes
			if st.MaxQueueDepth > maxDepth {
				maxDepth = st.MaxQueueDepth
			}
		}
		after = res.OctantsAfter
	}
	b.ReportMetric(float64(bytes)/float64(b.N), "commbytes/op")
	b.ReportMetric(float64(after), "octants")
	b.ReportMetric(float64(maxDepth), "maxqueue")
	assertQueueBounds(b, maxDepth)
}

// assertQueueBounds enforces the backpressure invariant on every balance
// benchmark: mailboxes are bounded, so the peak queue depth observed by the
// metering must never exceed the mailbox capacity.  A breach means either
// the bound stopped being enforced or the depth accounting drifted.
func assertQueueBounds(tb testing.TB, maxDepth int64) {
	tb.Helper()
	if maxDepth > int64(comm.DefaultMailboxCap) {
		tb.Fatalf("peak mailbox depth %d exceeds the mailbox capacity %d — backpressure is not being enforced",
			maxDepth, comm.DefaultMailboxCap)
	}
}

// TestBalanceQueueDepthBounded runs the Figure 15-style workload once and
// checks the new backpressure metering end to end: the multi-rank balance
// must actually queue messages (depth > 0), stay under the mailbox bound,
// and report a peak-in-flight volume that is positive yet no larger than
// the total logical bytes of its phase.
func TestBalanceQueueDepthBounded(t *testing.T) {
	res := Experiment{
		Conn:      FractalForest(3),
		Ranks:     8,
		BaseLevel: 2,
		MaxLevel:  6,
		Refine:    FractalRefine(6),
	}.Run()
	var total CommStats
	for phase, st := range res.Comm {
		if st.PeakInFlightBytes > st.Bytes {
			t.Errorf("phase %q: peak in-flight bytes %d exceed total logical bytes %d",
				phase, st.PeakInFlightBytes, st.Bytes)
		}
		if st.Bytes > 0 && st.PeakInFlightBytes == 0 {
			t.Errorf("phase %q: moved %d bytes but recorded no in-flight peak", phase, st.Bytes)
		}
		total.Add(st)
	}
	if total.MaxQueueDepth == 0 {
		t.Fatal("multi-rank balance recorded no mailbox depth at all — the metering is dead")
	}
	assertQueueBounds(t, total.MaxQueueDepth)
	t.Logf("P=%d: %d msgs, %d bytes, peak mailbox depth %d, peak in-flight %d bytes",
		res.Ranks, total.Messages, total.Bytes, total.MaxQueueDepth, total.PeakInFlightBytes)
}

// BenchmarkFig15WeakScaling reproduces the weak-scaling configuration of
// Figure 15: the six-tree fractal forest with ~constant octants per rank,
// comparing the old and new one-pass algorithms.  (Scale is reduced to
// laptop size; see cmd/weakscale for the sweep that prints the full
// normalized table.)
func BenchmarkFig15WeakScaling(b *testing.B) {
	for _, algo := range []Algo{AlgoOld, AlgoNew} {
		for i, p := range []int{1, 4, 8} {
			base := 2 + (i+1)/2 // grow the mesh with the rank count
			conn := FractalForest(3)
			b.Run(fmt.Sprintf("%v/P%d", algo, p), func(b *testing.B) {
				benchBalance(b, Experiment{
					Conn:      conn,
					Ranks:     p,
					BaseLevel: base,
					MaxLevel:  base + 4,
					Refine:    FractalRefine(base + 4),
					Options:   BalanceOptions{Algo: algo},
				})
			})
		}
	}
}

// BenchmarkFig17StrongScaling reproduces the strong-scaling configuration
// of Figure 17: a fixed synthetic ice-sheet mesh balanced on increasing
// rank counts, old vs new.
func BenchmarkFig17StrongScaling(b *testing.B) {
	is := NewIceSheet(2, 8, 9)
	for _, algo := range []Algo{AlgoOld, AlgoNew} {
		for _, p := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%v/P%d", algo, p), func(b *testing.B) {
				benchBalance(b, Experiment{
					Conn:      is.Conn,
					Ranks:     p,
					BaseLevel: 1,
					MaxLevel:  is.MaxLevel(),
					Refine:    is.Refine,
					Options:   BalanceOptions{Algo: algo},
				})
			})
		}
	}
}

// BenchmarkPartition measures the weighted SFC partition that the balance
// experiments depend on (Section II-A).
func BenchmarkPartition(b *testing.B) {
	conn := FractalForest(2)
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := comm.NewWorld(p)
				w.Run(func(c *comm.Comm) {
					f := NewUniformForest(conn, c, 3)
					f.Refine(c, 7, FractalRefine(7))
					f.Partition(c, nil)
				})
			}
		})
	}
}

// BenchmarkMortonCompare measures the space-filling-curve comparison at
// the bottom of every sort and search.
func BenchmarkMortonCompare(b *testing.B) {
	in := benchWorkload(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := in[i%len(in)]
		c := in[(i*7+3)%len(in)]
		octant.Compare(a, c)
	}
}

// BenchmarkNotifyRangesBudget is the ablation for the Ranges scheme: the
// range budget R trades Allgather volume against false-positive zero-length
// messages (Section V's motivation for replacing Ranges with Notify).
func BenchmarkNotifyRangesBudget(b *testing.B) {
	const p = 48
	receivers := notifyBenchPattern(p)
	for _, budget := range []int{1, 2, 8, 32} {
		b.Run(fmt.Sprintf("R%d", budget), func(b *testing.B) {
			var bytes, falsePos int64
			for i := 0; i < b.N; i++ {
				w := comm.NewWorld(p)
				w.Run(func(c *comm.Comm) {
					got := notify.Ranges(c, receivers[c.Rank()], budget)
					exact := len(receivers[c.Rank()]) // not the same quantity, but cheap proxy below
					_ = exact
					_ = got
				})
				bytes += w.TotalStats().Bytes
			}
			_ = falsePos
			b.ReportMetric(float64(bytes)/float64(b.N), "commbytes/op")
		})
	}
}

// BenchmarkGhostLayer measures ghost construction on a balanced forest.
func BenchmarkGhostLayer(b *testing.B) {
	conn := FractalForest(2)
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := comm.NewWorld(p)
				w.Run(func(c *comm.Comm) {
					f := NewUniformForest(conn, c, 2)
					f.Refine(c, 6, FractalRefine(6))
					f.Partition(c, nil)
					f.Balance(c, 2, BalanceOptions{})
					b.StopTimer()
					b.StartTimer()
					f.BuildGhost(c)
				})
			}
		})
	}
}

// BenchmarkChecksum measures the partition-invariant forest digest.
func BenchmarkChecksum(b *testing.B) {
	conn := FractalForest(2)
	w := comm.NewWorld(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(c *comm.Comm) {
			f := NewUniformForest(conn, c, 3)
			f.Checksum(c)
		})
	}
}

// BenchmarkBuildNodes measures corner-node numbering with hanging nodes on
// a balanced forest (the downstream consumer of 2:1 balance).
func BenchmarkBuildNodes(b *testing.B) {
	for _, dim := range []int{2, 3} {
		conn := FractalForest(dim)
		trees := GatherGlobal(conn, 1, 1, func(c *Comm, f *Forest) {
			f.Refine(c, 4, FractalRefine(4))
			f.Balance(c, dim, BalanceOptions{})
		})
		b.Run(fmt.Sprintf("dim%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BuildNodes(conn, trees); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBalanceAblation isolates the contribution of each new component
// (DESIGN.md §5): the paper attributes roughly half the speedup to the new
// Local balance + Query/Response and the rest to the new Local rebalance.
func BenchmarkBalanceAblation(b *testing.B) {
	conn := FractalForest(2)
	cfgs := []struct {
		name          string
		local, remote StageOverride
	}{
		{"all-old", StageOld, StageOld},
		{"new-local-only", StageNew, StageOld},
		{"new-remote-only", StageOld, StageNew},
		{"all-new", StageNew, StageNew},
	}
	for _, cfg := range cfgs {
		b.Run(cfg.name, func(b *testing.B) {
			benchBalance(b, Experiment{
				Conn: conn, Ranks: 6, BaseLevel: 3, MaxLevel: 7,
				Refine: FractalRefine(7),
				Options: BalanceOptions{
					LocalStage: cfg.local, RemoteStage: cfg.remote,
				},
			})
		})
	}
}
