// Remotebalance: a visual tour of Section IV.  It draws
//
//  1. the coarsest balanced octree Tk(o) around an octant for k = 1 and
//     k = 2 (Figure 3) — note the diamond (L1) vs square (L-inf) ripples;
//  2. the λ(δ̄) contour layers of Table II (Figure 11);
//  3. the seed construction: a remote octant o, a query region r, the O(1)
//     seeds, and the reconstruction of Tk(o) ∩ r from the seeds alone
//     (Figure 9), verified against the ripple oracle.
package main

import (
	"fmt"

	octbalance "repro"
	"repro/internal/balance"
	"repro/internal/linear"
	"repro/internal/octant"
)

func main() {
	root := octant.Root(2)
	const lvl = 5
	h := octant.Len(lvl)
	o := octant.New(2, lvl, 13*h, 18*h, 0)

	for _, k := range []int{1, 2} {
		fmt.Printf("T%d(o): the coarsest %d-balanced quadtree containing o (Figure 3%c)\n",
			k, k, 'a'+k-1)
		tree := balance.Tk(root, o, k)
		render(tree, o, nil, nil)
		fmt.Println()
	}

	fmt.Println("λ(δ̄) layer structure (Figure 11): size of the closest balanced")
	fmt.Println("octant a as a function of the distance between o and r, 2D:")
	lambdaContours()

	fmt.Println("seed reconstruction (Figure 9):")
	r := octant.New(2, 1, 1<<29, 0, 0) // upper-left quadrant... (x=0.5R, y=0)
	seeds, splits := balance.Seeds(o, r, 2)
	fmt.Printf("  o = %v (level %d), query octant r = %v (level %d)\n", o, o.Level, r, r.Level)
	fmt.Printf("  o splits r: %v, |seeds| = %d (bound 3^(d-1) = 3)\n", splits, len(seeds))
	recon := balance.TkOverlap(o, r, 2)
	tk := balance.Tk(root, o, 2)
	lo, hi := linear.OverlapRange(tk, r)
	fmt.Printf("  reconstruction from seeds: %d leaves; oracle overlap: %d leaves\n",
		len(recon), hi-lo)
	match := len(recon) == hi-lo
	for i := range recon {
		if recon[i] != tk[lo+i] {
			match = false
		}
	}
	fmt.Printf("  exact match with Tk(o) ∩ r: %v\n\n", match)
	fmt.Println("the reconstructed subtree inside r (seeds marked *):")
	render(recon, o, seeds, &r)
}

// render draws a set of 2D octants as level digits on a 32x32 raster; o is
// marked 'o', seeds are marked '*', and cells outside region are blank.
func render(leaves []octant.Octant, o octant.Octant, seeds []octant.Octant, region *octant.Octant) {
	const cells = 32
	grid := make([][]byte, cells)
	for i := range grid {
		grid[i] = make([]byte, cells)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	rootLen := int64(octant.RootLen)
	put := func(q octant.Octant, ch byte, force bool) {
		hh := int64(q.Len()) * cells / rootLen
		if hh < 1 {
			hh = 1
		}
		x0 := int64(q.X) * cells / rootLen
		y0 := int64(q.Y) * cells / rootLen
		for y := y0; y < y0+hh && y < cells; y++ {
			for x := x0; x < x0+hh && x < cells; x++ {
				if y < 0 || x < 0 {
					continue
				}
				if force || grid[y][x] == ' ' {
					grid[y][x] = ch
				}
			}
		}
	}
	for _, q := range leaves {
		put(q, byte('0'+q.Level), true)
	}
	for _, s := range seeds {
		put(s, '*', true)
	}
	put(o, 'o', true)
	for y := cells - 1; y >= 0; y-- {
		fmt.Println("  " + string(grid[y]))
	}
}

// lambdaContours prints ⌊log2 λ⌋ over a grid of parent-grid distances for
// both 2D balance conditions, visualizing the diamond vs square layers.
func lambdaContours() {
	const n = 24
	sz := 3 // size of o: parent grid spacing 2^(sz+1)
	hb := int64(1) << uint(sz+1)
	oo := octant.Root(2).FirstDescendant(int8(octant.MaxLevel - sz))
	for _, k := range []int{1, 2} {
		fmt.Printf("  k = %d:\n", k)
		for row := n - 1; row >= 0; row-- {
			line := "    "
			for col := 0; col < n; col++ {
				d := [3]int64{hb * int64(col), hb * int64(row), 0}
				s := balance.SizeOfA(oo, balance.Lambda(2, k, d))
				line += string(rune('0' + (s-sz)%10))
			}
			fmt.Println(line)
		}
	}
	fmt.Println()
}

var _ = octbalance.MaxLevel // keep the public API import (documentation cross-reference)
