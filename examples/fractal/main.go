// Fractal: the weak-scaling workload of Figures 14 and 15 at laptop scale.
// The six-octree forest is refined by the recursive child-{0,3,5,6} rule,
// partitioned across simulated ranks, and 2:1 corner balanced.  The example
// prints the partition layout and verifies the parallel result against the
// serial reference balance.
package main

import (
	"fmt"

	octbalance "repro"
)

func main() {
	const (
		dim   = 3
		base  = 2
		depth = 3
		ranks = 6
	)
	conn := octbalance.FractalForest(dim)
	refine := octbalance.FractalRefine(base + depth)
	fmt.Printf("fractal forest (Figure 14): %v, %d ranks\n\n", conn, ranks)

	// Run the distributed pipeline and keep per-rank ownership info.
	w := octbalance.NewWorld(ranks)
	counts := make([]int64, ranks)
	chunks := make([][]octbalance.TreeChunk, ranks)
	var forests []*octbalance.Forest = make([]*octbalance.Forest, ranks)
	w.Run(func(c *octbalance.Comm) {
		f := octbalance.NewUniformForest(conn, c, base)
		f.Refine(c, base+depth, refine)
		f.Partition(c, nil)
		f.Balance(c, dim, octbalance.BalanceOptions{})
		counts[c.Rank()] = f.NumLocal()
		chunks[c.Rank()] = f.Local
		forests[c.Rank()] = f
	})

	fmt.Println("partition after balance (space-filling-curve segments):")
	for r := 0; r < ranks; r++ {
		treeSpan := ""
		if len(chunks[r]) > 0 {
			first := chunks[r][0].Tree
			last := chunks[r][len(chunks[r])-1].Tree
			treeSpan = fmt.Sprintf("trees %d..%d", first, last)
		}
		fmt.Printf("  rank %d: %7d octants  %s\n", r, counts[r], treeSpan)
	}

	// Gather and validate against the serial reference.
	trees := make([][]octbalance.Octant, conn.NumTrees())
	var total int64
	for r := 0; r < ranks; r++ {
		for _, tc := range chunks[r] {
			trees[tc.Tree] = append(trees[tc.Tree], tc.Octants()...)
		}
		total += counts[r]
	}
	before := octbalance.GatherGlobal(conn, 1, base, func(c *octbalance.Comm, f *octbalance.Forest) {
		f.Refine(c, base+depth, refine)
	})
	ref := octbalance.RefBalance(conn, before, dim)
	var refTotal int64
	match := true
	for t := range ref {
		refTotal += int64(len(ref[t]))
		if len(ref[t]) != len(trees[t]) {
			match = false
		}
	}
	fmt.Printf("\nglobal octants: %d (serial reference: %d, match: %v)\n", total, refTotal, match)
	if err := octbalance.CheckForest(conn, trees, dim); err != nil {
		panic(err)
	}
	fmt.Println("forest is corner balanced across all trees")

	// Level histogram: the fractal rule yields a geometric level mix.
	hist := map[int8]int{}
	for t := range trees {
		for _, o := range trees[t] {
			hist[o.Level]++
		}
	}
	fmt.Println("\nleaf level histogram:")
	for l := int8(0); l <= base+depth+1; l++ {
		if hist[l] > 0 {
			fmt.Printf("  level %d: %8d\n", l, hist[l])
		}
	}
}
