// Ice sheet: the strong-scaling workload of Figures 16 and 17 at laptop
// scale.  A cap-shaped forest of trees (the synthetic Antarctica) is
// refined along a wandering grounding line, partitioned, and 2:1 corner
// balanced with both the old and new one-pass algorithms.  The example
// prints the mesh growth under balance (the paper's 55M -> 85M octants
// phenomenon), the per-phase timings, and an ASCII map of the domain.
package main

import (
	"fmt"

	octbalance "repro"
)

func main() {
	const (
		grid     = 10 // 10x10 tree grid masked to the sheet outline
		maxLevel = 7
		ranks    = 8
	)
	is := octbalance.NewIceSheet(2, grid, maxLevel)
	fmt.Printf("synthetic ice sheet: %v, refined to level %d along the grounding line\n\n",
		is.Conn, maxLevel)

	for _, algo := range []octbalance.Algo{octbalance.AlgoOld, octbalance.AlgoNew} {
		res := octbalance.Experiment{
			Conn:      is.Conn,
			Ranks:     ranks,
			BaseLevel: 1,
			MaxLevel:  maxLevel,
			Refine:    is.Refine,
			Options:   octbalance.BalanceOptions{Algo: algo},
		}.Run()
		fmt.Printf("%v algorithm: %d octants -> %d after balance (%.2fx growth)\n",
			algo, res.OctantsBefore, res.OctantsAfter,
			float64(res.OctantsAfter)/float64(res.OctantsBefore))
		fmt.Printf("  phases [s]: local balance %.4f, notify %.4f, query/response %.4f, rebalance %.4f\n",
			res.MaxPhases.LocalBalance.Seconds(), res.MaxPhases.Notify.Seconds(),
			res.MaxPhases.QueryResponse.Seconds(), res.MaxPhases.Rebalance.Seconds())
	}

	// Validate the result against the serial reference and draw the mesh
	// resolution map.
	trees := octbalance.GatherGlobal(is.Conn, ranks, 1, func(c *octbalance.Comm, f *octbalance.Forest) {
		f.Refine(c, maxLevel, is.Refine)
		f.Partition(c, nil)
		f.Balance(c, 2, octbalance.BalanceOptions{})
	})
	if err := octbalance.CheckForest(is.Conn, trees, 2); err != nil {
		panic(err)
	}
	fmt.Println("\nresolution map (finest leaf level per cell; '.' = outside the domain):")
	renderForest(is.Conn, trees, grid)
}

// renderForest rasterizes the finest refinement level of each region of the
// masked forest.
func renderForest(conn *octbalance.Connectivity, trees [][]octbalance.Octant, grid int) {
	const perTree = 8 // raster cells per tree side
	n := grid * perTree
	img := make([][]byte, n)
	for i := range img {
		img[i] = make([]byte, n)
		for j := range img[i] {
			img[i][j] = '.'
		}
	}
	root := int64(1) << 30
	for t := int32(0); t < conn.NumTrees(); t++ {
		tx, ty, _ := conn.TreeCell(t)
		for _, o := range trees[t] {
			x0 := int64(tx)*perTree + int64(o.X)*perTree/root
			y0 := int64(ty)*perTree + int64(o.Y)*perTree/root
			h := int64(o.Len()) * perTree / root
			if h < 1 {
				h = 1
			}
			ch := byte('0' + o.Level)
			if o.Level > 9 {
				ch = byte('a' + o.Level - 10)
			}
			for y := y0; y < y0+h && y < int64(n); y++ {
				for x := x0; x < x0+h && x < int64(n); x++ {
					if img[y][x] == '.' || img[y][x] < ch {
						img[y][x] = ch
					}
				}
			}
		}
	}
	for y := n - 1; y >= 0; y-- {
		fmt.Println(string(img[y]))
	}
}
