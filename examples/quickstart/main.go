// Quickstart: build a quadtree, refine it adaptively, enforce the 2:1
// balance condition, and print the mesh — the smallest end-to-end use of
// the library (compare Figure 1 of the paper: unbalanced, face balanced,
// corner balanced).
package main

import (
	"fmt"

	octbalance "repro"
)

func main() {
	// A single quadtree (2D), refined around a point of interest.
	conn := octbalance.NewBrick(2, 1, 1, 1, [3]bool{})
	const maxLevel = 6

	// The refinement callback splits octants containing the focus point.
	focusX, focusY := 0.3, 0.62
	refine := func(tree int32, o octbalance.Octant) bool {
		h := float64(o.Len()) / float64(int64(1)<<30)
		x := float64(o.X) / float64(int64(1)<<30)
		y := float64(o.Y) / float64(int64(1)<<30)
		return focusX >= x && focusX < x+h && focusY >= y && focusY < y+h
	}

	for _, k := range []int{1, 2} {
		kind := "face balance (Figure 1b)"
		if k == 2 {
			kind = "corner balance (Figure 1c)"
		}
		trees := octbalance.GatherGlobal(conn, 1, 0, func(c *octbalance.Comm, f *octbalance.Forest) {
			f.Refine(c, maxLevel, refine)
			before := f.NumGlobal
			f.Balance(c, k, octbalance.BalanceOptions{Algo: octbalance.AlgoNew})
			fmt.Printf("%s: %d octants refined -> %d after balance\n", kind, before, f.NumGlobal)
		})
		if err := octbalance.CheckForest(conn, trees, k); err != nil {
			panic(err)
		}
		render(trees[0])
	}
}

// render draws the quadtree leaves as an ASCII grid of level digits.
func render(leaves []octbalance.Octant) {
	const cells = 32 // 32x32 character raster
	grid := make([][]byte, cells)
	for i := range grid {
		grid[i] = make([]byte, cells)
	}
	root := int64(1) << 30
	for _, o := range leaves {
		h := int64(o.Len()) * cells / root
		if h < 1 {
			h = 1
		}
		x0 := int64(o.X) * cells / root
		y0 := int64(o.Y) * cells / root
		for y := y0; y < y0+h && y < cells; y++ {
			for x := x0; x < x0+h && x < cells; x++ {
				grid[y][x] = byte('0' + o.Level)
			}
		}
	}
	for y := cells - 1; y >= 0; y-- { // y axis upward
		fmt.Println(string(grid[y]))
	}
	fmt.Println()
}
