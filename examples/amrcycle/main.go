// AMR cycle: the dynamic adaptation loop that motivates a fast 2:1 balance
// (Section I: forest-of-octrees AMR is "particularly well-suited for
// frequent dynamic adaptation").  A refinement front (an expanding circular
// wave) moves through a multi-tree domain; every step the mesh is refined
// ahead of the front, coarsened behind it, repartitioned, rebalanced, and
// the ghost layer is rebuilt.  The example prints per-step statistics and
// writes the final mesh as a VTK file.
package main

import (
	"fmt"
	"math"
	"os"
	"sync"

	octbalance "repro"
)

const (
	gridN    = 3
	maxLevel = 7
	ranks    = 6
	steps    = 8
)

// front returns the wave radius at a step, in tree-grid units.
func front(step int) float64 {
	return 0.35 + 0.28*float64(step)
}

// near reports whether a leaf's cell intersects a band around the front.
func near(conn *octbalance.Connectivity, tree int32, o octbalance.Octant, step int) bool {
	tx, ty, _ := conn.TreeCell(tree)
	root := float64(int64(1) << 30)
	h := float64(o.Len()) / root
	x := float64(tx) + float64(o.X)/root + h/2
	y := float64(ty) + float64(o.Y)/root + h/2
	cx, cy := float64(gridN)/2, float64(gridN)/2
	r := math.Hypot(x-cx, y-cy)
	return math.Abs(r-front(step)) < h
}

func main() {
	conn := octbalance.NewBrick(2, gridN, gridN, 1, [3]bool{})
	w := octbalance.NewWorld(ranks)
	var mu sync.Mutex
	var finalTrees [][]octbalance.Octant = make([][]octbalance.Octant, conn.NumTrees())

	w.Run(func(c *octbalance.Comm) {
		f := octbalance.NewUniformForest(conn, c, 2)
		for step := 0; step < steps; step++ {
			// Refine toward the front, coarsen far behind it.
			f.Refine(c, maxLevel, func(tree int32, o octbalance.Octant) bool {
				return near(conn, tree, o, step)
			})
			f.Coarsen(c, func(tree int32, fam []octbalance.Octant) bool {
				for _, o := range fam {
					if near(conn, tree, o, step) || o.Level <= 2 {
						return false
					}
				}
				return true
			})
			f.Partition(c, nil)
			before := f.NumGlobal
			times := f.Balance(c, 2, octbalance.BalanceOptions{})
			ghost := f.BuildGhost(c)
			sum := f.Checksum(c)
			if c.Rank() == 0 {
				fmt.Printf("step %d: front r=%.2f, %7d -> %7d octants, balance %.1f ms, ghosts(rank0) %d, checksum %016x\n",
					step, front(step), before, f.NumGlobal,
					times.Total().Seconds()*1e3, ghost.NumGhosts(), sum)
			}
		}
		// Gather the final mesh for export.
		mu.Lock()
		for _, tc := range f.Local {
			finalTrees[tc.Tree] = append(finalTrees[tc.Tree], tc.Octants()...)
		}
		mu.Unlock()
	})

	// Number the nodes of the final balanced mesh (FEM-style) and export.
	nodes, err := octbalance.BuildNodes(conn, finalTrees)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nfinal mesh: %d independent nodes, %d hanging node classes\n",
		nodes.NumIndependent, len(nodes.Hangings))

	out, err := os.Create("amrcycle.vtk")
	if err != nil {
		panic(err)
	}
	defer out.Close()
	if err := octbalance.WriteVTK(out, conn, finalTrees); err != nil {
		panic(err)
	}
	fmt.Println("wrote amrcycle.vtk (legacy VTK unstructured grid)")
}
