// Poisson: the reason 2:1 balance exists.  An adaptive quadtree mesh is
// refined toward a sharp ring source, corner balanced (so that every
// T-intersection carries exactly one hanging node), numbered with
// hanging-node constraints, and a Poisson problem is solved on it with
// bilinear finite elements.  Uniform meshes and the adaptive mesh are
// compared against a fine reference solve at their common grid points,
// showing the accuracy-per-node advantage that adaptivity + balance buy.
package main

import (
	"fmt"
	"math"

	octbalance "repro"
)

// A sharp ring source: f(x,y) = exp(-800 (r - 0.5)^2), r = |(x,y)|.
func rhs(x, y float64) float64 {
	r := math.Hypot(x, y)
	d := r - 0.5
	return math.Exp(-800 * d * d)
}

// solve runs the FEM solve on the given trees.
func solve(conn *octbalance.Connectivity, trees [][]octbalance.Octant) *octbalance.FEMSolution {
	sol, err := octbalance.SolveFEM(octbalance.FEMProblem{Conn: conn, Trees: trees, F: rhs}, 1e-10, 40000)
	if err != nil {
		panic(err)
	}
	return sol
}

// sample extracts the solution at the level-`cmp` lattice points (which are
// nodes of every mesh in this comparison), keyed by integer lattice index.
func sample(sol *octbalance.FEMSolution, cmp int) map[[2]int]float64 {
	n := 1 << uint(cmp)
	out := make(map[[2]int]float64)
	for id, c := range sol.Coords {
		fx, fy := c[0]*float64(n), c[1]*float64(n)
		ix, iy := math.Round(fx), math.Round(fy)
		if math.Abs(fx-ix) < 1e-9 && math.Abs(fy-iy) < 1e-9 {
			out[[2]int{int(ix), int(iy)}] = sol.U[id]
		}
	}
	return out
}

func main() {
	conn := octbalance.NewBrick(2, 1, 1, 1, [3]bool{})
	const cmpLevel = 4 // compare at the level-4 lattice, shared by all meshes

	fmt.Println("-Δu = ring source, u = 0 on the boundary of the unit square")
	fmt.Println("error = max deviation from a uniform level-7 reference solve,")
	fmt.Println("measured at the common level-4 grid points")
	fmt.Println()

	// Reference: uniform level 7 (16,384 elements).
	refTrees := octbalance.GatherGlobal(conn, 1, 7, func(c *octbalance.Comm, f *octbalance.Forest) {})
	ref := sample(solve(conn, refTrees), cmpLevel)

	report := func(name string, trees [][]octbalance.Octant) {
		sol := solve(conn, trees)
		got := sample(sol, cmpLevel)
		var maxErr, frontErr float64
		n := float64(int(1) << cmpLevel)
		for key, v := range ref {
			u, ok := got[key]
			if !ok {
				continue
			}
			e := math.Abs(u - v)
			if e > maxErr {
				maxErr = e
			}
			r := math.Hypot(float64(key[0])/n, float64(key[1])/n)
			if math.Abs(r-0.5) < 0.12 && e > frontErr {
				frontErr = e
			}
		}
		leaves := 0
		for _, tr := range trees {
			leaves += len(tr)
		}
		fmt.Printf("%-10s %8d leaves %8d nodes %6d hangings   err %.3e   err@front %.3e\n",
			name, leaves, sol.Nodes.NumIndependent, len(sol.Nodes.Hangings), maxErr, frontErr)
	}

	for _, level := range []int{4, 5, 6} {
		trees := octbalance.GatherGlobal(conn, 1, level, func(c *octbalance.Comm, f *octbalance.Forest) {})
		report(fmt.Sprintf("uniform-%d", level), trees)
	}

	// Adaptive: refine cells crossing the ring, then corner balance.
	trees := octbalance.GatherGlobal(conn, 1, 4, func(c *octbalance.Comm, f *octbalance.Forest) {
		f.Refine(c, 7, func(tree int32, o octbalance.Octant) bool {
			h := float64(o.Len()) / float64(int64(1)<<30)
			x := float64(o.X)/float64(int64(1)<<30) + h/2
			y := float64(o.Y)/float64(int64(1)<<30) + h/2
			return math.Abs(math.Hypot(x, y)-0.5) < 1.2*h
		})
		f.Balance(c, 2, octbalance.BalanceOptions{})
	})
	report("adaptive", trees)

	fmt.Println("\nThe adaptive mesh resolves the source ring at level-7 resolution with a")
	fmt.Println("fraction of the elements; hanging-node constraints (enabled by 2:1")
	fmt.Println("balance) keep the discretization conforming across element size jumps.")
}
