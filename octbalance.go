// Package octbalance is a Go reproduction of Isaac, Burstedde & Ghattas,
// "Low-Cost Parallel Algorithms for 2:1 Octree Balance" (IPDPS 2012) — the
// p4est 2:1 balance paper.  It provides, from scratch:
//
//   - d-dimensional linear octrees (d = 2, 3) on the p4est integer lattice
//     with the full set of octant relations (package internal/octant);
//   - sorted-array octree algorithms: Linearize, Complete and the paper's
//     preclusion-based Reduce (internal/linear);
//   - the old (Figure 6) and new (Figure 7) subtree balance algorithms, the
//     O(1) remote balance formulas of Table II, and the seed-octant
//     construction of Section IV (internal/balance);
//   - an in-process message-passing runtime standing in for MPI, with
//     metered point-to-point and collective operations (internal/comm);
//   - the three communication-pattern reversal schemes of Section V,
//     including the divide-and-conquer Notify algorithm (internal/notify);
//   - a distributed forest of octrees on brick connectivities with
//     refinement, coarsening, weighted space-filling-curve partitioning and
//     the complete one-pass parallel 2:1 balance in both the old and the
//     new variant (internal/forest);
//   - the evaluation workloads (fractal and synthetic ice sheet) and the
//     measurement plumbing used to regenerate the paper's figures
//     (internal/workload, internal/stats).
//
// This package is the public facade: it re-exports the types and
// constructors a downstream user needs, and adds the Experiment runner used
// by the benchmark drivers in cmd/ and the benchmarks in bench_test.go.
package octbalance

import (
	"repro/internal/balance"
	"repro/internal/comm"
	"repro/internal/fem"
	"repro/internal/forest"
	"repro/internal/linear"
	"repro/internal/mesh"
	"repro/internal/notify"
	"repro/internal/obs"
	"repro/internal/octant"
	"repro/internal/vtk"
	"repro/internal/workload"
)

// Core octant types and relations.
type (
	// Octant is a d-dimensional octree node on the integer lattice.
	Octant = octant.Octant
	// Dir is a neighbor direction with components in {-1, 0, +1}.
	Dir = octant.Dir
)

// MaxLevel is the deepest refinement level supported.
const MaxLevel = octant.MaxLevel

// Octant constructors and relations.
var (
	// NewOctant returns the octant at level l with corner (x, y, z).
	NewOctant = octant.New
	// RootOctant returns the root octant of a dim-dimensional tree.
	RootOctant = octant.Root
	// CompareOctants orders octants along the space-filling curve
	// (ancestors first).
	CompareOctants = octant.Compare
)

// Linear octree algorithms (Section II-A and III-B).
var (
	// SortOctants sorts a slice into space-filling-curve order.
	SortOctants = linear.Sort
	// Linearize removes overlaps from a sorted slice, keeping leaves.
	Linearize = linear.Linearize
	// Complete fills the gaps of a sorted linear slice with the coarsest
	// octants so that the result tiles root.
	Complete = linear.Complete
	// Reduce removes preclusion-redundant octants (Figure 8).
	Reduce = linear.Reduce
	// Overlay merges two linear fragments keeping the pointwise finest.
	Overlay = linear.Overlay
)

// Subtree balance algorithms (Section III) and remote-balance primitives
// (Section IV).
var (
	// BalanceSubtreeOld is the old subtree balance algorithm (Figure 6).
	BalanceSubtreeOld = balance.SubtreeOld
	// BalanceSubtreeNew is the new subtree balance algorithm (Figure 7).
	BalanceSubtreeNew = balance.SubtreeNew
	// CheckBalanced verifies the k-balance condition on a subtree.
	CheckBalanced = balance.Check
	// Tk computes the coarsest k-balanced octree containing an octant.
	Tk = balance.Tk
	// Seeds computes the seed octants of a remote octant's influence on a
	// region (Section IV, Figure 9).
	Seeds = balance.Seeds
	// TkOverlap reconstructs Tk(o) ∩ r from seeds.
	TkOverlap = balance.TkOverlap
	// Carry3 is the three-way carry of equation (1).
	Carry3 = balance.Carry3
	// Lambda is the Table II distance-to-size function.
	Lambda = balance.Lambda
)

// Message-passing runtime (MPI substitute).
type (
	// World is a group of communicating ranks backed by goroutines.
	World = comm.World
	// Comm is one rank's endpoint.
	Comm = comm.Comm
	// CommStats counts messages and bytes.
	CommStats = comm.Stats
)

// NewWorld creates a world of p ranks.
var NewWorld = comm.NewWorld

// Observability (internal/obs): rank-aware tracing, phase aggregation,
// Chrome trace-event export and the BENCH record schema.
type (
	// Tracer records spans, instants and counters per rank; attach one to
	// a World (SetTracer) or an Experiment (Tracer field) and export the
	// timeline with WriteTrace.  A nil *Tracer is a valid disabled tracer.
	Tracer = obs.Tracer
	// Span is an open tracer span.
	Span = obs.Span
	// PhaseSummary is a cross-rank min/mean/max/imbalance aggregate.
	PhaseSummary = obs.Summary
	// BenchRecord is the machine-readable benchmark record of cmd/bench.
	BenchRecord = obs.BenchRecord
	// BenchRun is one balance execution inside a BenchRecord.
	BenchRun = obs.BenchRun
	// KernelResult is one hot-kernel micro-benchmark measurement.
	KernelResult = obs.KernelResult
)

var (
	// NewTracer creates a tracer with one track per rank.
	NewTracer = obs.NewTracer
	// SummarizeValues reduces one value per rank to a PhaseSummary.
	SummarizeValues = obs.Summarize
	// AggregateValue gathers one value from every rank and summarizes it
	// on every rank (collective).
	AggregateValue = obs.Aggregate
	// AllreducePhaseTimes reduces PhaseTimes to the elementwise maximum
	// over all ranks (collective).
	AllreducePhaseTimes = forest.AllreducePhaseTimes
)

// Pattern reversal schemes (Section V).
var (
	// NotifyNaive reverses a communication pattern with Allgatherv.
	NotifyNaive = notify.Naive
	// NotifyRanges reverses it with bounded rank ranges (superset result).
	NotifyRanges = notify.Ranges
	// Notify is the divide-and-conquer reversal of Figure 13.
	Notify = notify.Notify
	// NotifyNaiveCodec, NotifyRangesCodec and NotifyCodec take an explicit
	// wire codec for their payloads.
	NotifyNaiveCodec  = notify.NaiveCodec
	NotifyRangesCodec = notify.RangesCodec
	NotifyCodec       = notify.NotifyCodec
)

// WireCodec selects the payload encoding of the comm stack (see
// forest.WireCodec / comm.WireCodec).
type WireCodec = forest.WireCodec

// Wire codec versions.
const (
	// WireV0 is the fixed-width 16-byte-per-octant legacy format (default).
	WireV0 = forest.WireV0
	// WireV1 is the compact delta-Morton varint format.
	WireV1 = forest.WireV1
)

var (
	// ParseWireCodec parses a -codec flag value ("v0"/"v1").
	ParseWireCodec = comm.ParseWireCodec
	// SetCommPooling toggles the comm layer's payload buffer pool and
	// returns the previous setting (A/B lever for allocation measurements).
	SetCommPooling = comm.SetPooling
)

// Forest of octrees.
type (
	// Connectivity lays trees out in a (masked, optionally periodic)
	// brick grid.
	Connectivity = forest.Connectivity
	// Forest is one rank's view of the distributed forest.
	Forest = forest.Forest
	// TreeChunk is the local leaf storage of one tree.
	TreeChunk = forest.TreeChunk
	// BalanceOptions selects algorithm variants for Balance.
	BalanceOptions = forest.BalanceOptions
	// PhaseTimes holds the per-phase durations of one balance run.
	PhaseTimes = forest.PhaseTimes
	// Algo selects the old or new one-pass balance.
	Algo = forest.Algo
	// NotifyScheme selects the pattern reversal variant.
	NotifyScheme = forest.NotifyScheme
)

// Balance algorithm variants.
const (
	AlgoOld = forest.AlgoOld
	AlgoNew = forest.AlgoNew

	SchemeNaive  = forest.NotifyNaive
	SchemeRanges = forest.NotifyRanges
	SchemeNotify = forest.NotifyDC
)

// Forest constructors and the serial reference.
var (
	// NewBrick creates a brick connectivity.
	NewBrick = forest.NewBrick
	// NewMaskedBrick creates a brick connectivity with deactivated cells.
	NewMaskedBrick = forest.NewMaskedBrick
	// NewUniformForest creates a uniformly refined, equally partitioned
	// forest (collective).
	NewUniformForest = forest.NewUniform
	// RefBalance is the serial reference balance used for validation.
	RefBalance = forest.RefBalance
	// CheckForest verifies global (cross-tree) balance.
	CheckForest = forest.CheckForest
)

// Evaluation workloads (Section VI).
type IceSheet = workload.IceSheet

var (
	// FractalRefine is the Figure 15 refinement rule.
	FractalRefine = workload.Fractal
	// FractalForest is the six-tree forest of Figure 14.
	FractalForest = workload.FractalForest
	// NewIceSheet builds the synthetic Antarctica-like domain of the
	// strong-scaling study (Figures 16 and 17).
	NewIceSheet = workload.NewIceSheet
	// RandomRefine is a position-hashed random refinement rule.
	RandomRefine = workload.Random
)

// Ghost layers, node numbering, checksums and visualization.
type (
	// GhostLayer is one layer of remote leaves around a partition.
	GhostLayer = forest.GhostLayer
	// GhostOctant is a remote leaf with its tree and owner.
	GhostOctant = forest.GhostOctant
	// Nodes is a global corner-node numbering with hanging nodes.
	Nodes = mesh.Nodes
	// Hanging describes one hanging node's dependencies.
	Hanging = mesh.Hanging
	// NodeID is a global node number.
	NodeID = mesh.NodeID
	// CellData is a per-leaf attribute for VTK export.
	CellData = vtk.CellData
)

var (
	// BuildNodes numbers the corner nodes of a balanced global forest.
	BuildNodes = mesh.BuildNodes
	// WriteVTK writes a gathered forest as a legacy VTK unstructured grid.
	WriteVTK = vtk.Write
	// ChecksumGlobal digests a gathered forest (partition invariant).
	ChecksumGlobal = forest.ChecksumGlobal
)

// Finite elements on balanced meshes (the downstream consumer of balance).
type (
	// FEMProblem is a Poisson problem on the forest's domain.
	FEMProblem = fem.Problem
	// FEMSolution is a solved Poisson problem.
	FEMSolution = fem.Solution
)

// SolveFEM assembles and solves a Poisson problem with bilinear elements
// and hanging-node constraints on a balanced 2D forest.
var SolveFEM = fem.Solve

// StageOverride pins one stage of the one-pass balance for ablations.
type StageOverride = forest.StageOverride

// Stage override values (see DESIGN.md §5, ablation benches).
const (
	StageDefault = forest.StageDefault
	StageOld     = forest.StageOld
	StageNew     = forest.StageNew
)

// Distributed node numbering and forest serialization.
type (
	// DistNodes is one rank's portion of a parallel node numbering.
	DistNodes = mesh.DistNodes
	// DistHanging is a hanging node with global dependency ids.
	DistHanging = mesh.DistHanging
)

var (
	// BuildNodesDistributed numbers corner nodes in parallel (lnodes).
	BuildNodesDistributed = mesh.BuildNodesDistributed
	// SaveForest serializes a gathered global forest (p4est_save analogue).
	SaveForest = forest.SaveGlobal
	// SaveForestCodec serializes with an explicit leaf encoding (WireV1
	// writes the compact version-2 format).
	SaveForestCodec = forest.SaveGlobalCodec
	// LoadForest restores a forest written by SaveForest or SaveForestCodec.
	LoadForest = forest.LoadGlobal
)
