package octbalance_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	octbalance "repro"
)

func tracedExperiment() octbalance.Experiment {
	return octbalance.Experiment{
		Conn:      octbalance.FractalForest(2),
		Ranks:     4,
		BaseLevel: 2,
		MaxLevel:  5,
		Refine:    octbalance.FractalRefine(5),
	}
}

// logicalComm projects per-phase comm stats down to the deterministic
// logical meters (message and byte counts), dropping the queue-depth
// high-water marks that depend on goroutine scheduling.
func logicalComm(m map[string]octbalance.CommStats) map[string][2]int64 {
	out := make(map[string][2]int64, len(m))
	for phase, st := range m {
		out[phase] = [2]int64{st.Messages, st.Bytes}
	}
	return out
}

// TestTracingDoesNotChangeStats runs the same experiment with and without a
// tracer attached and asserts the logical communication meters are
// byte-for-byte identical: instrumentation observes, it must not perturb.
func TestTracingDoesNotChangeStats(t *testing.T) {
	plain := tracedExperiment().Run()

	e := tracedExperiment()
	e.Tracer = octbalance.NewTracer(e.Ranks)
	traced := e.Run()

	if plain.OctantsBefore != traced.OctantsBefore || plain.OctantsAfter != traced.OctantsAfter {
		t.Fatalf("octant counts changed under tracing: %d->%d vs %d->%d",
			plain.OctantsBefore, plain.OctantsAfter, traced.OctantsBefore, traced.OctantsAfter)
	}
	// Compare only the logical meters.  MaxQueueDepth and PeakInFlightBytes
	// are physical high-water marks that wobble with goroutine scheduling on
	// any pair of runs, traced or not.
	if !reflect.DeepEqual(logicalComm(plain.Comm), logicalComm(traced.Comm)) {
		t.Errorf("per-phase comm stats changed under tracing:\nplain  %+v\ntraced %+v",
			plain.Comm, traced.Comm)
	}
	pm, pb := plain.CommTotals()
	tm, tb := traced.CommTotals()
	if pm != tm || pb != tb {
		t.Errorf("comm totals changed under tracing: %d/%d vs %d/%d", pm, pb, tm, tb)
	}
}

// TestExperimentTraceExport checks a traced experiment exports a valid
// Chrome trace-event timeline containing the balance phases on every rank.
func TestExperimentTraceExport(t *testing.T) {
	e := tracedExperiment()
	e.Tracer = octbalance.NewTracer(e.Ranks)
	e.Run()

	var buf bytes.Buffer
	if err := e.Tracer.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	phaseSeen := make(map[int]map[string]bool)
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "B" {
			continue
		}
		if phaseSeen[ev.Tid] == nil {
			phaseSeen[ev.Tid] = make(map[string]bool)
		}
		phaseSeen[ev.Tid][ev.Name] = true
	}
	for r := 0; r < e.Ranks; r++ {
		for _, phase := range octbalance.BalancePhases {
			if !phaseSeen[r][phase] {
				t.Errorf("rank %d: no %q span in trace", r, phase)
			}
		}
	}
}

// TestExperimentPhaseAgg checks the cross-rank aggregates the bench record
// is built from: present for every phase, internally consistent, and the
// obs/aggregate collective's own traffic excluded from the totals.
func TestExperimentPhaseAgg(t *testing.T) {
	res := tracedExperiment().Run()
	keys := append(append([]string{}, octbalance.BalancePhases...), octbalance.PhaseTotal)
	for _, key := range keys {
		s, ok := res.PhaseAgg[key]
		if !ok {
			t.Fatalf("PhaseAgg missing %q", key)
		}
		if s.Min > s.Mean || s.Mean > s.Max || (s.Max > 0 && s.Imbalance < 1) {
			t.Errorf("PhaseAgg[%q] inconsistent: %+v", key, s)
		}
	}
	if _, ok := res.Comm["obs/aggregate"]; !ok {
		t.Error("aggregation traffic not attributed to obs/aggregate")
	}
	msgs, _ := res.CommTotals()
	var withObs int64
	for _, st := range res.Comm {
		withObs += st.Messages
	}
	if msgs >= withObs {
		t.Errorf("CommTotals (%d msgs) does not exclude obs/ phases (%d with them)", msgs, withObs)
	}

	run := res.BenchRun()
	if run.TotalMessages != msgs {
		t.Errorf("BenchRun.TotalMessages %d != CommTotals %d", run.TotalMessages, msgs)
	}
	if run.Algo == "" || len(run.Phases) != len(keys) {
		t.Errorf("BenchRun incomplete: %+v", run)
	}
}
